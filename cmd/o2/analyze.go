package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"o2"
	"o2/internal/lang"
	"o2/internal/obs"
	"o2/internal/race"
	"o2/internal/summary"
	"o2/internal/workload"
)

// runAnalyze is the classic single-program CLI (also reachable as
// `o2 analyze`).
func runAnalyze(args []string) int {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	ctxKind := fs.String("context", "origin", "context policy: origin, 0ctx, kcfa, kobj")
	k := fs.Int("k", 1, "context depth")
	workers := fs.Int("workers", 0, "detection worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	android := fs.Bool("android", false, "Android mode: serialize event handlers")
	replicate := fs.Bool("replicate-events", false, "treat event handlers as concurrently re-entrant")
	timeBudget := fs.Duration("time-budget", 0, "abort the analysis after this long (0 = unlimited)")
	sharing := fs.Bool("sharing", false, "print the origin-sharing (OSA) report")
	origins := fs.Bool("origins", false, "print discovered origins and attributes")
	stats := fs.Bool("stats", false, "print analysis statistics")
	asJSON := fs.Bool("json", false, "emit the race report as JSON")
	explainJSON := fs.Bool("explain-json", false, "emit machine-readable race witnesses as versioned JSON (overrides -json)")
	statsJSON := fs.String("stats-json", "", "write the RunStats observability report to this file")
	traceOut := fs.String("trace-out", "", "write a Chrome trace_event JSON file of the span tree (open in Perfetto)")
	traceSpans := fs.Bool("trace-spans", false, "print the phase span tree to stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	deadlocks := fs.Bool("deadlock", false, "also run the lock-order deadlock analysis")
	explain := fs.Bool("explain", false, "print a witness for each race (spawn sites, locksets, ordering)")
	dumpIR := fs.Bool("dump-ir", false, "dump the lowered IR and exit")
	incremental := fs.Bool("incremental", false, "analyze through per-unit summary reuse (identical report; reuse stats under -stats)")
	oversyncF := fs.Bool("oversync", false, "also report lock regions guarding only origin-local data")
	preset := fs.String("preset", "", "analyze a built-in benchmark preset (e.g. zookeeper) instead of source files")
	progressF := fs.Bool("progress", false, "stream live phase/pair progress to stderr while the analysis runs")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if fs.NArg() == 0 && *preset == "" {
		fmt.Fprintln(os.Stderr, "usage: o2 [flags] file.mini ...")
		fs.PrintDefaults()
		return exitUsage
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(exitInternal, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(exitInternal, err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "o2:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "o2:", err)
			}
		}()
	}

	cfg := o2.DefaultConfig()
	cfg.Android = *android
	cfg.ReplicateEvents = *replicate
	cfg.Workers = *workers
	cfg.TimeBudget = *timeBudget
	var reg *obs.Registry
	if *statsJSON != "" || *traceSpans || *traceOut != "" {
		reg = obs.New()
		cfg.Obs = reg
	}
	pol, err := o2.PolicyByName(*ctxKind, *k)
	if err != nil {
		return fail(exitUsage, err)
	}
	cfg.Policy = pol
	if *progressF {
		stop := startProgress(&cfg)
		defer stop()
	}

	var res *o2.Result
	if *preset != "" {
		p, ok := workload.ByName(*preset)
		if !ok {
			return fail(exitUsage, fmt.Errorf("unknown preset %q", *preset))
		}
		prog := workload.Build(p, cfg.Entries)
		if *dumpIR {
			prog.Print(os.Stdout)
			return exitOK
		}
		res, err = o2.AnalyzeProgram(prog, cfg)
		if err != nil {
			return fail(exitCode(err), err)
		}
		return reportAnalyze(res, analyzeOutput{
			statsJSON: *statsJSON, traceOut: *traceOut, traceSpans: *traceSpans, reg: reg,
			origins: *origins, sharing: *sharing, stats: *stats, deadlocks: *deadlocks,
			oversync: *oversyncF, explain: *explain, explainJSON: *explainJSON, asJSON: *asJSON,
		})
	}

	files, err := readFiles(fs.Args())
	if err != nil {
		return fail(exitUsage, err)
	}
	switch {
	case *incremental && !*dumpIR:
		// One-shot incremental run against a fresh store: every unit is a
		// cold miss, but the report (and the exit code) is identical to
		// the full pipeline by construction, and the inc.* counters land
		// in RunStats. Long-lived reuse lives in `o2 serve`/`o2 batch`.
		res, err = o2.AnalyzeIncremental(context.Background(), files, cfg, summary.NewStore(0))
		if err != nil {
			return fail(exitCode(err), err)
		}
	case *dumpIR:
		// The one frontend that needs the compiled program itself rather
		// than an analysis of it.
		prog, err := lang.CompileFiles(files, cfg.Entries)
		if err != nil {
			return fail(exitParse, err)
		}
		prog.Print(os.Stdout)
		return exitOK
	default:
		srcs := make([]o2.Source, 0, len(fs.Args()))
		for _, name := range fs.Args() {
			srcs = append(srcs, o2.Source{Name: name, Bytes: []byte(files[name])})
		}
		res, err = o2.AnalyzeSources(context.Background(), srcs, cfg)
		if err != nil {
			return fail(exitCode(err), err)
		}
	}

	return reportAnalyze(res, analyzeOutput{
		statsJSON: *statsJSON, traceOut: *traceOut, traceSpans: *traceSpans, reg: reg,
		origins: *origins, sharing: *sharing, stats: *stats, deadlocks: *deadlocks,
		oversync: *oversyncF, explain: *explain, explainJSON: *explainJSON, asJSON: *asJSON,
	})
}

// startProgress wires a live Progress into cfg and spawns a ticker that
// repaints one status line on stderr until the returned stop function
// runs (which prints the final snapshot and a newline). Progress never
// alters analysis results; it only feeds this display.
func startProgress(cfg *o2.Config) (stop func()) {
	p := obs.NewProgress()
	cfg.Progress = p
	paint := func(nl string) {
		snap := p.Snapshot()
		fmt.Fprintf(os.Stderr, "\r\x1b[K%-6s %5.1f%%  pairs %d/%d  races %d%s",
			snap.Phase, snap.Percent, snap.PairsDone, snap.PairsTotal, snap.Races, nl)
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				paint("")
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		paint("\n")
	}
}

// analyzeOutput carries the report-rendering flags shared by the file
// and preset frontends of `o2 analyze`.
type analyzeOutput struct {
	statsJSON, traceOut          string
	traceSpans                   bool
	reg                          *obs.Registry
	origins, sharing, stats      bool
	deadlocks, oversync          bool
	explain, explainJSON, asJSON bool
}

// reportAnalyze renders every requested view of a finished analysis and
// returns the process exit code.
func reportAnalyze(res *o2.Result, out analyzeOutput) int {
	statsJSON, traceOut, traceSpans, reg := out.statsJSON, out.traceOut, out.traceSpans, out.reg

	if statsJSON != "" {
		if err := res.RunStats.WriteFile(statsJSON); err != nil {
			return fail(exitInternal, err)
		}
	}
	if traceOut != "" {
		if err := res.RunStats.WriteTraceFile(traceOut); err != nil {
			return fail(exitInternal, err)
		}
	}
	if traceSpans {
		reg.WriteSpans(os.Stderr)
	}

	if out.origins {
		fmt.Println("origins:")
		for _, org := range res.Analysis.Origins.Origins {
			fmt.Printf("  %s attrs=%s\n", org, res.Analysis.OriginAttrs(org.ID))
		}
		fmt.Println()
	}
	if out.sharing {
		fmt.Printf("origin-shared locations (%d):\n", len(res.Sharing.Shared))
		for _, key := range res.Sharing.Shared {
			origins := res.Sharing.OriginsOf(key)
			names := make([]string, len(origins))
			for i, o := range origins {
				names[i] = res.Analysis.Origins.Get(o).String()
			}
			sort.Strings(names)
			fmt.Printf("  %-24s shared by %v\n", key, names)
		}
		fmt.Println()
	}
	if out.stats {
		st := res.Analysis.Stats()
		fmt.Printf("stats: %s\n", st)
		fmt.Printf("times: pta=%v osa=%v shb=%v detect=%v total=%v\n",
			res.PTATime, res.OSATime, res.SHBTime, res.DetectTime, res.TotalTime())
		fmt.Printf("shb: %s, %d lock regions\n", res.Graph, res.Graph.Regions)
		if res.Inc != nil {
			fmt.Printf("incremental: units=%d reused=%d recomputed=%d dirty=%.2f fallback=%v\n",
				res.Inc.UnitsTotal, res.Inc.UnitsReused, res.Inc.UnitsRecomputed,
				res.Inc.DirtyRatio(), res.Inc.Fallback)
		}
		fmt.Println()
	}

	if out.deadlocks {
		rep := res.Deadlocks()
		fmt.Printf("deadlock analysis: %d lock-order edges, %d warnings\n", rep.Edges, len(rep.Warnings))
		for _, w := range rep.Warnings {
			fmt.Println(w.String())
		}
		fmt.Println()
	}
	if out.oversync {
		rep := res.OverSync()
		fmt.Printf("over-synchronization: %d regions, %d useful, %d unnecessary\n",
			rep.Regions, rep.UsefulRegions, len(rep.Warnings))
		for _, w := range rep.Warnings {
			fmt.Println("  " + w.String())
		}
		fmt.Println()
	}

	races := res.Races()
	if out.explainJSON {
		// The machine-readable witness report: one versioned Witness per
		// race (origin spawn chains, lockset derivation, HB-absence
		// evidence). Byte-stable for a fixed input — golden-tested over
		// the truth corpus.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(race.Witnesses(res.Analysis, res.Graph, res.Report)); err != nil {
			return fail(exitInternal, err)
		}
		if len(races) > 0 {
			return exitRaces
		}
		return exitOK
	}
	if out.asJSON {
		type jsonAccess struct {
			Op     string `json:"op"`
			Pos    string `json:"pos"`
			Fn     string `json:"fn"`
			Origin string `json:"origin"`
		}
		type jsonRace struct {
			Location string     `json:"location"`
			A        jsonAccess `json:"a"`
			B        jsonAccess `json:"b"`
		}
		out := make([]jsonRace, len(races))
		for i, r := range races {
			out[i] = jsonRace{
				Location: r.Key.String(),
				A:        jsonAccess{op(r.A.Write), r.A.Pos.String(), r.A.Fn, res.Analysis.Origins.Get(r.A.Origin).String()},
				B:        jsonAccess{op(r.B.Write), r.B.Pos.String(), r.B.Fn, res.Analysis.Origins.Get(r.B.Origin).String()},
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fail(exitInternal, err)
		}
	} else {
		if len(races) == 0 {
			fmt.Println("no races detected")
		}
		for i, r := range races {
			if out.explain {
				fmt.Printf("race #%d %s\n", i+1, race.Explain(res.Analysis, res.Graph, &r))
			} else {
				fmt.Printf("race #%d %s\n", i+1, r.String())
			}
		}
	}
	if len(races) > 0 {
		return exitRaces
	}
	return exitOK
}
