package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"o2/internal/sched"
	"o2/internal/server"
)

// newLogger builds the structured logger behind -log-format/-log-level.
// Format "none" (or an empty string) disables logging entirely — the
// sched/server layers take a nil logger as "off".
func newLogger(format, level string) (*slog.Logger, error) {
	if format == "none" || format == "" {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want json, text or none)", format)
}

// runServe starts the batch-analysis HTTP service and blocks until
// SIGINT/SIGTERM, then drains in-flight jobs before exiting.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	workers := fs.Int("workers", 0, "job worker-pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth (backpressure beyond it)")
	cache := fs.Int("cache", 128, "result-cache entries (-1 disables caching)")
	incremental := fs.Bool("incremental", false, "reuse per-unit summaries across jobs (two-level cache)")
	unitCache := fs.Int("unit-cache", 0, "per-unit summary store entries with -incremental (0 = default)")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job deadline (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
	logFormat := fs.String("log-format", "text", "structured-log format: json, text, none")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	pprofF := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling; do not enable on untrusted networks)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: o2 serve [flags]")
		return exitUsage
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return fail(exitUsage, err)
	}

	s := sched.New(sched.Options{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cache,
		DefaultTimeout:   *jobTimeout,
		CollectStats:     true,
		Incremental:      *incremental,
		UnitCacheEntries: *unitCache,
		Log:              logger,
	})
	srvOpts := []server.Option{server.WithLogger(logger)}
	if *pprofF {
		srvOpts = append(srvOpts, server.WithPprof())
	}
	srv := server.New(s, srvOpts...)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(exitInternal, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return fail(exitInternal, err)
		}
	}
	fmt.Fprintf(os.Stderr, "o2 serve: listening on http://%s (workers=%d queue=%d cache=%d)\n",
		bound, s.Stats().Workers, *queue, *cache)

	httpSrv := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "o2 serve: %s, draining...\n", sig)
	case err := <-errCh:
		return fail(exitInternal, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "o2 serve: http shutdown:", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "o2 serve: drain incomplete:", err)
		return exitInternal
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "o2 serve: drained (completed=%d failed=%d canceled=%d cache hits=%d)\n",
		st.Completed, st.Failed, st.Canceled, st.CacheHits)
	return exitOK
}
