// Command o2 analyzes a minilang program for data races.
//
// Usage:
//
//	o2 [flags] file.mini [more.mini ...]
//
//	-context origin|0ctx|kcfa|kobj   context policy (default origin)
//	-k N                             context depth (default 1)
//	-workers N                       detection worker-pool size (0 = GOMAXPROCS, 1 = sequential)
//	-android                         serialize event handlers (§4.2)
//	-replicate-events                model concurrently re-entrant events
//	-sharing                         print the origin-sharing report (OSA)
//	-origins                         print the discovered origins
//	-stats                           print analysis statistics
//	-json                            machine-readable race report
//	-stats-json FILE                 write the RunStats observability report (spans, counters, rates)
//	-trace-spans                     print the phase span tree to stderr
//	-cpuprofile FILE                 write a pprof CPU profile
//	-memprofile FILE                 write a pprof heap profile
//	-deadlock                        also run lock-order deadlock analysis
//	-oversync                        also flag unnecessary lock regions
//	-explain                         witness for each race (spawns, locks, ordering)
//	-dump-ir                         dump the lowered IR and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"o2"
	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/obs"
	"o2/internal/pta"
	"o2/internal/race"
)

func main() { os.Exit(run()) }

func run() int {
	ctxKind := flag.String("context", "origin", "context policy: origin, 0ctx, kcfa, kobj")
	k := flag.Int("k", 1, "context depth")
	workers := flag.Int("workers", 0, "detection worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	android := flag.Bool("android", false, "Android mode: serialize event handlers")
	replicate := flag.Bool("replicate-events", false, "treat event handlers as concurrently re-entrant")
	sharing := flag.Bool("sharing", false, "print the origin-sharing (OSA) report")
	origins := flag.Bool("origins", false, "print discovered origins and attributes")
	stats := flag.Bool("stats", false, "print analysis statistics")
	asJSON := flag.Bool("json", false, "emit the race report as JSON")
	statsJSON := flag.String("stats-json", "", "write the RunStats observability report to this file")
	traceSpans := flag.Bool("trace-spans", false, "print the phase span tree to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	deadlocks := flag.Bool("deadlock", false, "also run the lock-order deadlock analysis")
	explain := flag.Bool("explain", false, "print a witness for each race (spawn sites, locksets, ordering)")
	dumpIR := flag.Bool("dump-ir", false, "dump the lowered IR and exit")
	oversyncF := flag.Bool("oversync", false, "also report lock regions guarding only origin-local data")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: o2 [flags] file.mini ...")
		flag.PrintDefaults()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "o2:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "o2:", err)
			}
		}()
	}

	files := map[string]string{}
	for _, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			return fail(err)
		}
		files[name] = string(src)
	}
	entries := ir.DefaultEntryConfig()
	prog, err := lang.CompileFiles(files, entries)
	if err != nil {
		return fail(err)
	}

	if *dumpIR {
		prog.Print(os.Stdout)
		return 0
	}

	cfg := o2.DefaultConfig()
	cfg.Android = *android
	cfg.ReplicateEvents = *replicate
	cfg.Workers = *workers
	var reg *obs.Registry
	if *statsJSON != "" || *traceSpans {
		reg = obs.New()
		cfg.Obs = reg
	}
	switch *ctxKind {
	case "origin":
		cfg.Policy = pta.Policy{Kind: pta.KOrigin, K: *k}
	case "0ctx":
		cfg.Policy = pta.Policy{Kind: pta.Insensitive}
	case "kcfa":
		cfg.Policy = pta.Policy{Kind: pta.KCFA, K: *k}
	case "kobj":
		cfg.Policy = pta.Policy{Kind: pta.KObj, K: *k}
	default:
		return fail(fmt.Errorf("unknown context policy %q", *ctxKind))
	}

	res, err := o2.AnalyzeProgram(prog, cfg)
	if err != nil {
		return fail(err)
	}

	if *statsJSON != "" {
		if err := res.RunStats.WriteFile(*statsJSON); err != nil {
			return fail(err)
		}
	}
	if *traceSpans {
		reg.WriteSpans(os.Stderr)
	}

	if *origins {
		fmt.Println("origins:")
		for _, org := range res.Analysis.Origins.Origins {
			fmt.Printf("  %s attrs=%s\n", org, res.Analysis.OriginAttrs(org.ID))
		}
		fmt.Println()
	}
	if *sharing {
		fmt.Printf("origin-shared locations (%d):\n", len(res.Sharing.Shared))
		for _, key := range res.Sharing.Shared {
			origins := res.Sharing.OriginsOf(key)
			names := make([]string, len(origins))
			for i, o := range origins {
				names[i] = res.Analysis.Origins.Get(o).String()
			}
			sort.Strings(names)
			fmt.Printf("  %-24s shared by %v\n", key, names)
		}
		fmt.Println()
	}
	if *stats {
		st := res.Analysis.Stats()
		fmt.Printf("stats: %s\n", st)
		fmt.Printf("times: pta=%v osa=%v shb=%v detect=%v total=%v\n",
			res.PTATime, res.OSATime, res.SHBTime, res.DetectTime, res.TotalTime())
		fmt.Printf("shb: %s, %d lock regions\n\n", res.Graph, res.Graph.Regions)
	}

	if *deadlocks {
		rep := res.Deadlocks()
		fmt.Printf("deadlock analysis: %d lock-order edges, %d warnings\n", rep.Edges, len(rep.Warnings))
		for _, w := range rep.Warnings {
			fmt.Println(w.String())
		}
		fmt.Println()
	}
	if *oversyncF {
		rep := res.OverSync()
		fmt.Printf("over-synchronization: %d regions, %d useful, %d unnecessary\n",
			rep.Regions, rep.UsefulRegions, len(rep.Warnings))
		for _, w := range rep.Warnings {
			fmt.Println("  " + w.String())
		}
		fmt.Println()
	}

	races := res.Races()
	if *asJSON {
		type jsonAccess struct {
			Op     string `json:"op"`
			Pos    string `json:"pos"`
			Fn     string `json:"fn"`
			Origin string `json:"origin"`
		}
		type jsonRace struct {
			Location string     `json:"location"`
			A        jsonAccess `json:"a"`
			B        jsonAccess `json:"b"`
		}
		out := make([]jsonRace, len(races))
		for i, r := range races {
			out[i] = jsonRace{
				Location: r.Key.String(),
				A:        jsonAccess{op(r.A.Write), r.A.Pos.String(), r.A.Fn, res.Analysis.Origins.Get(r.A.Origin).String()},
				B:        jsonAccess{op(r.B.Write), r.B.Pos.String(), r.B.Fn, res.Analysis.Origins.Get(r.B.Origin).String()},
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fail(err)
		}
	} else {
		if len(races) == 0 {
			fmt.Println("no races detected")
		}
		for i, r := range races {
			if *explain {
				fmt.Printf("race #%d %s\n", i+1, race.Explain(res.Analysis, res.Graph, &r))
			} else {
				fmt.Printf("race #%d %s\n", i+1, r.String())
			}
		}
	}
	if len(races) > 0 {
		return 1
	}
	return 0
}

func op(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "o2:", err)
	return 1
}
