// Command o2 analyzes minilang programs for data races.
//
// Usage:
//
//	o2 [flags] file.mini [more.mini ...]    analyze files (legacy default)
//	o2 serve  [flags]                       run the batch-analysis HTTP service
//	o2 batch  [flags] dir|zip|ndjson|file   analyze a corpus (add -stream for NDJSON records)
//	o2 submit [flags] file.mini ...         submit to a running o2 serve
//	o2 eval   [flags]                       score against the oracle corpus
//
// Run `o2 <subcommand> -h` for per-command flags.
//
// Exit codes (all subcommands):
//
//	0  analysis completed, no races (for eval: gate passed)
//	1  analysis completed, races found (for eval: gate failed)
//	2  usage error (bad flags or arguments)
//	3  source parse / compile error
//	4  budget exhausted (step budget, time budget or deadline)
//	5  analysis canceled
//	6  internal error
//
// Multi-program runs (`o2 batch`) exit with the worst per-program
// outcome under the same table: a corpus with one unparsable program
// and ten clean ones exits 3, but all ten are still analyzed and
// reported — per-program failure lands in that program's table row or
// NDJSON record (exit_class), never aborts the batch.
//
// The -incremental flag (on analyze, serve, batch and eval) routes
// analyses through per-unit summary reuse. It never changes the exit
// code contract: the race report is identical to a full analysis by
// construction — change classes summaries cannot express fall back to
// whole-program compilation, never to different results — so exit 0/1
// mean exactly what they mean without the flag, compile errors still
// exit 3 (incremental front-end failures are typed o2.ErrCompile), and
// budget/cancel exhaustion still exit 4/5. The only observable
// difference is speed and the inc.* reuse counters in -stats output,
// RunStats and /metrics.
package main

import (
	"errors"
	"fmt"
	"os"

	"o2"
	"o2/internal/sched"
)

// Exit codes; see the package comment.
const (
	exitOK       = 0
	exitRaces    = 1
	exitUsage    = 2
	exitParse    = 3
	exitBudget   = 4
	exitCanceled = 5
	exitInternal = 6
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			return runServe(args[1:])
		case "batch":
			return runBatch(args[1:])
		case "submit":
			return runSubmit(args[1:])
		case "analyze":
			return runAnalyze(args[1:])
		case "eval":
			return runEval(args[1:])
		case "help", "-h", "-help", "--help":
			fmt.Fprintln(os.Stderr, "usage: o2 [flags] file.mini ...")
			fmt.Fprintln(os.Stderr, "       o2 serve|batch|submit|analyze|eval [flags] ...")
			return exitUsage
		}
	}
	return runAnalyze(args)
}

// exitCode classifies an analysis error into the process exit code.
// Parse errors are not typed by the lang package, so compile-step
// failures are classified at the call site via exitParseErr.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, sched.ErrParse), errors.Is(err, o2.ErrCompile):
		return exitParse
	case errors.Is(err, o2.ErrBudget):
		return exitBudget
	case errors.Is(err, o2.ErrCanceled):
		return exitCanceled
	}
	return exitInternal
}

// kindExit maps a scheduler error kind onto the exit code.
func kindExit(kind sched.ErrKind) int {
	switch kind {
	case sched.KindNone:
		return exitOK
	case sched.KindParse:
		return exitParse
	case sched.KindBudget:
		return exitBudget
	case sched.KindCanceled:
		return exitCanceled
	}
	return exitInternal
}

func fail(code int, err error) int {
	fmt.Fprintln(os.Stderr, "o2:", err)
	return code
}

func op(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// readFiles loads the named sources into the map form every entry point
// shares.
func readFiles(names []string) (map[string]string, error) {
	files := map[string]string{}
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		files[name] = string(src)
	}
	return files, nil
}
