// Command o2bench regenerates the paper's evaluation tables over the
// synthetic workload presets and case-study models.
//
// Usage:
//
//	o2bench -table all                 # every table
//	o2bench -table 5                   # Table 5 only (also: 3,6,7,8,9,10)
//	o2bench -table ablation            # §4.1 optimization ablation
//	o2bench -table linux               # §5.4 Linux kernel statistics
//	o2bench -quick                     # representative subset of presets
//	o2bench -steps 1000000 -pairs 5000000  # budgets (the paper's ">4h")
package main

import (
	"flag"
	"fmt"
	"os"

	"o2/internal/bench"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 3,5,6,7,8,9,10,ablation,extensions,android,linux,all")
	steps := flag.Int64("steps", 0, "pointer-analysis step budget (0 = default)")
	pairs := flag.Int64("pairs", 0, "race-detection pair budget (0 = default)")
	quick := flag.Bool("quick", false, "run a representative subset of presets")
	workers := flag.Int("workers", 0, "detection worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	o := bench.Opts{StepBudget: *steps, PairBudget: *pairs, Quick: *quick, Workers: *workers}
	w := os.Stdout

	run := func(name string) {
		switch name {
		case "3":
			bench.Table3(w, o)
		case "5":
			bench.Table5(w, o)
		case "6":
			bench.Table6(w, o)
		case "7":
			bench.Table7(w, o)
		case "8":
			bench.Table8(w, o)
		case "9":
			bench.Table9(w, o)
		case "10":
			bench.Table10(w)
		case "ablation":
			bench.Ablation(w, o)
		case "extensions":
			bench.Extensions(w, o)
		case "android":
			bench.Android(w, o)
		case "linux":
			bench.Linux(w, o)
		default:
			fmt.Fprintf(os.Stderr, "unknown table %q\n", name)
			os.Exit(2)
		}
	}

	if *table == "all" {
		for _, t := range []string{"3", "5", "6", "7", "8", "9", "10", "ablation", "extensions", "android", "linux"} {
			run(t)
		}
		return
	}
	run(*table)
}
