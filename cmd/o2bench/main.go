// Command o2bench regenerates the paper's evaluation tables over the
// synthetic workload presets and case-study models.
//
// Usage:
//
//	o2bench -table all                 # every table
//	o2bench -table 5                   # Table 5 only (also: 3,6,7,8,9,10)
//	o2bench -table ablation            # §4.1 optimization ablation
//	o2bench -table linux               # §5.4 Linux kernel statistics
//	o2bench -table gate                # CI bench gate (3 fixed presets vs golden stats)
//	o2bench -table variance            # CI timing-noise gate (repeat presets, fail on cv > 15%)
//	o2bench -quick                     # representative subset of presets
//	o2bench -steps 1000000 -pairs 5000000  # budgets (the paper's ">4h")
//	o2bench -stats-json out.json       # write the observability report
//	o2bench -trace-out trace.json      # write a Perfetto-loadable trace_event file
//	o2bench -trace-spans               # print the span tree to stderr
//	o2bench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The gate compares the deterministic fields of the run report (pairs
// checked, size counters, cache hit rates, races) against the checked-in
// golden in internal/bench/testdata, and enforces the per-phase heap
// allocation budgets the golden carries; -update-golden (alias
// -update-gate) regenerates both.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"o2/internal/bench"
	"o2/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	table := flag.String("table", "all", "table to regenerate: 3,5,6,7,8,9,10,ablation,extensions,android,linux,gate,variance,all")
	steps := flag.Int64("steps", 0, "pointer-analysis step budget (0 = default)")
	pairs := flag.Int64("pairs", 0, "race-detection pair budget (0 = default)")
	quick := flag.Bool("quick", false, "run a representative subset of presets")
	workers := flag.Int("workers", 0, "detection worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	statsJSON := flag.String("stats-json", "", "write the RunStats/gate observability report to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file of the span tree (open in Perfetto)")
	traceSpans := flag.Bool("trace-spans", false, "print the phase span tree to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	golden := flag.String("golden", "internal/bench/testdata/bench_gate_golden.json", "gate: golden stats file")
	updateGolden := flag.Bool("update-golden", false, "gate: rewrite the golden stats file (races, counters, alloc budgets) instead of comparing")
	updateGate := flag.Bool("update-gate", false, "alias for -update-golden")
	flag.Parse()
	*updateGolden = *updateGolden || *updateGate

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "o2bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "o2bench:", err)
			}
		}()
	}

	o := bench.Opts{StepBudget: *steps, PairBudget: *pairs, Quick: *quick, Workers: *workers}
	w := os.Stdout

	if *table == "gate" {
		// The gate manages one registry per preset itself; -stats-json
		// names its artifact (BENCH_ci.json in CI).
		if err := bench.Gate(w, o, *golden, *statsJSON, *updateGolden); err != nil {
			return fail(err)
		}
		return 0
	}
	if *table == "variance" {
		// -stats-json names the variance artifact (VARIANCE_ci.json in CI).
		if err := bench.Variance(w, o, *statsJSON); err != nil {
			return fail(err)
		}
		return 0
	}

	var reg *obs.Registry
	if *statsJSON != "" || *traceSpans || *traceOut != "" {
		reg = obs.New()
		o.Obs = reg
	}

	ok := true
	run := func(name string) {
		switch name {
		case "3":
			bench.Table3(w, o)
		case "5":
			bench.Table5(w, o)
		case "6":
			bench.Table6(w, o)
		case "7":
			bench.Table7(w, o)
		case "8":
			bench.Table8(w, o)
		case "9":
			bench.Table9(w, o)
		case "10":
			bench.Table10(w)
		case "ablation":
			bench.Ablation(w, o)
		case "extensions":
			bench.Extensions(w, o)
		case "android":
			bench.Android(w, o)
		case "linux":
			bench.Linux(w, o)
		default:
			fmt.Fprintf(os.Stderr, "unknown table %q\n", name)
			ok = false
		}
	}

	if *table == "all" {
		for _, t := range []string{"3", "5", "6", "7", "8", "9", "10", "ablation", "extensions", "android", "linux"} {
			run(t)
		}
	} else {
		run(*table)
	}
	if !ok {
		return 2
	}

	if *statsJSON != "" {
		if err := reg.Snapshot().WriteFile(*statsJSON); err != nil {
			return fail(err)
		}
	}
	if *traceOut != "" {
		if err := reg.Snapshot().WriteTraceFile(*traceOut); err != nil {
			return fail(err)
		}
	}
	if *traceSpans {
		reg.WriteSpans(os.Stderr)
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "o2bench:", err)
	return 1
}
