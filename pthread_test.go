package o2

import (
	"testing"

	"o2/internal/pta"
)

// Tests for the C-side features of the paper: pthread_create/pthread_join
// origins with attribute pointers, indirect calls through function
// pointers (including function-pointer tables), and C-style event
// registration.

func TestPthreadCreateRace(t *testing.T) {
	src := `
class Conn { field bytes; }
func worker(arg) {
  arg.bytes = arg;      // unsynchronized write per thread
}
main {
  c = new Conn();
  fp = &worker;
  t1 = pthread_create(fp, c);
  t2 = pthread_create(fp, c);
}
`
	res := analyze(t, src, DefaultConfig())
	threads := 0
	for _, org := range res.Analysis.Origins.Origins {
		if org.Kind == pta.KindThread {
			threads++
		}
	}
	if threads != 2 {
		t.Fatalf("two pthread_create sites should create 2 origins, got %d", threads)
	}
	if n := len(res.Races()); n != 1 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("want 1 race between the pthreads, got %d", n)
	}
}

func TestPthreadJoinOrders(t *testing.T) {
	src := `
class Conn { field bytes; }
func worker(arg) {
  arg.bytes = arg;
}
main {
  c = new Conn();
  fp = &worker;
  t1 = pthread_create(fp, c);
  pthread_join(t1);
  c.bytes = null;        // after the join: ordered
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 0 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("join should order the thread before main's write: %d races", n)
	}
}

func TestPthreadLocalDataPerOrigin(t *testing.T) {
	// Each pthread allocates through a shared helper: OPA separates the
	// buffers per origin, 0-ctx conflates them into a false race.
	src := `
class Buf { field data; }
func mkbuf(arg) {
  b = new Buf();
  return b;
}
func worker(arg) {
  b = mkbuf(arg);
  b.data = arg;          // origin-local under OPA
}
main {
  c = new Arg();
  fp = &worker;
  t1 = pthread_create(fp, c);
  t2 = pthread_create(fp, c);
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 0 {
		t.Fatalf("OPA should keep per-pthread buffers local: %d races", n)
	}
	cfg := DefaultConfig()
	cfg.Policy = Insensitive
	base := analyze(t, src, cfg)
	if n := len(base.Races()); n == 0 {
		t.Fatalf("0-ctx should conflate the buffers into a false race")
	}
}

func TestFunctionPointerTable(t *testing.T) {
	// Dispatch through a function-pointer table stored in an array — the
	// indirect-target reasoning RacerD-style tools lack.
	src := `
class S { field hits; field misses; }
func onHit(s) { s.hits = s; }
func onMiss(s) { s.misses = s; }
func dispatchAll(table, s) {
  h = table[0];
  h(s);
}
class W {
  field tbl; field s;
  W(t, s) { this.tbl = t; this.s = s; }
  run() {
    t = this.tbl;
    x = this.s;
    dispatchAll(t, x);
  }
}
main {
  s = new S();
  tbl = new Table();
  f1 = &onHit;
  f2 = &onMiss;
  tbl[0] = f1;
  tbl[1] = f2;
  w1 = new W(tbl, s);
  w2 = new W(tbl, s);
  w1.start();
  w2.start();
}
`
	res := analyze(t, src, DefaultConfig())
	// Both handlers are reachable through the table; both write shared
	// fields from two origins → two races (hits, misses).
	fields := map[string]bool{}
	for _, r := range res.Races() {
		fields[r.Key.Field] = true
	}
	if !fields["hits"] || !fields["misses"] {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("function-pointer table dispatch should reach both handlers: %v", fields)
	}
}

func TestEventRegisterCStyle(t *testing.T) {
	// A libevent-style handler registration plus a worker pthread: the
	// memcached pattern in C clothing.
	src := `
class Stats { field reqs; }
func on_request(s) {
  s.reqs = s;            // event handler write
}
func flusher(s) {
  s.reqs = null;         // worker thread write
}
main {
  st = new Stats();
  h = &on_request;
  event_register(h, st);
  f = &flusher;
  t1 = pthread_create(f, st);
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 1 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("want 1 thread-vs-event race, got %d", n)
	}
	kinds := map[pta.OriginKind]bool{}
	r := res.Races()[0]
	kinds[res.Analysis.Origins.Get(r.A.Origin).Kind] = true
	kinds[res.Analysis.Origins.Get(r.B.Origin).Kind] = true
	if !kinds[pta.KindThread] || !kinds[pta.KindEvent] {
		t.Errorf("race should span the pthread and the registered event: %v", kinds)
	}
}

func TestPthreadCreateInLoopTwins(t *testing.T) {
	src := `
class S { field v; }
func worker(s) { s.v = s; }
main {
  s = new S();
  fp = &worker;
  while (i) {
    t = pthread_create(fp, s);
  }
}
`
	res := analyze(t, src, DefaultConfig())
	threads := 0
	for _, org := range res.Analysis.Origins.Origins {
		if org.Kind == pta.KindThread {
			threads++
		}
	}
	if threads != 2 {
		t.Fatalf("looped pthread_create should twin the origin: %d threads", threads)
	}
	if n := len(res.Races()); n != 1 {
		t.Fatalf("twins should race on the shared write: got %d", n)
	}
}

func TestPthreadAttributesReported(t *testing.T) {
	src := `
class Conn { field fd; }
func worker(conn) { conn.fd = conn; }
main {
  c = new Conn();
  fp = &worker;
  t1 = pthread_create(fp, c);
}
`
	res := analyze(t, src, DefaultConfig())
	for _, org := range res.Analysis.Origins.Origins {
		if org.Kind != pta.KindThread {
			continue
		}
		attrs := res.Analysis.OriginAttrs(org.ID)
		if attrs == "()" {
			t.Errorf("pthread origin should carry the arg attribute, got %q", attrs)
		}
	}
}

func TestPthreadMutexLowering(t *testing.T) {
	src := `
class S { field v; }
func worker(arg) {
  m = arg.mu;
  pthread_mutex_lock(m);
  arg.v = arg;
  pthread_mutex_unlock(m);
}
class S2 { field v; field mu; }
main {
  s = new S2();
  mu = new Mutex();
  s.mu = mu;
  fp = &worker;
  t1 = pthread_create(fp, s);
  t2 = pthread_create(fp, s);
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 0 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("pthread mutex should protect the write: %d races", n)
	}
}

// Customized locks through configurations (§4: "customized locks through
// configurations"): a project-specific lock API configured by name.
func TestCustomLockConfiguration(t *testing.T) {
	src := `
class S { field v; field mu; }
func worker(arg) {
  m = arg.mu;
  my_lock(m);
  arg.v = arg;
  my_unlock(m);
}
main {
  s = new S();
  mu = new Mutex();
  s.mu = mu;
  fp = &worker;
  t1 = pthread_create(fp, s);
  t2 = pthread_create(fp, s);
}
`
	cfg := DefaultConfig()
	cfg.Entries.LockFuncs = append(cfg.Entries.LockFuncs, "my_lock")
	cfg.Entries.UnlockFuncs = append(cfg.Entries.UnlockFuncs, "my_unlock")
	res := analyze(t, src, cfg)
	if n := len(res.Races()); n != 0 {
		t.Fatalf("configured custom lock should protect: %d races", n)
	}

	// Without the configuration, my_lock is an unknown indirect call: the
	// write is unprotected and the race is reported — the paper's Linux
	// false-positive mode for mis-recognized spinlocks, in reverse.
	plain := analyze(t, src, DefaultConfig())
	if n := len(plain.Races()); n != 1 {
		t.Fatalf("unconfigured custom lock should leave the race: got %d", n)
	}
}
