// Benchmarks regenerating the paper's evaluation, one benchmark family per
// table or figure. Sub-benchmarks name the workload preset (and policy
// where the table compares policies), so
//
//	go test -bench=Table5 -benchmem
//
// reproduces Table 5's timing comparison as Go benchmark output, while
//
//	go run ./cmd/o2bench -table 5
//
// prints it in the paper's tabular layout. Budgets mirror the paper's
// 4-hour timeout; runs that exceed them are skipped (reported as the
// table's ">budget" cells).
package o2_test

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"testing"

	"o2"
	"o2/internal/bench"
	"o2/internal/cases"
	"o2/internal/deadlock"
	"o2/internal/ir"
	"o2/internal/lang"
	"o2/internal/obs"
	"o2/internal/osa"
	"o2/internal/oversync"
	"o2/internal/pta"
	"o2/internal/race"
	"o2/internal/racerd"
	"o2/internal/sched"
	"o2/internal/shb"
	"o2/internal/workload"
)

var benchOpts = bench.Opts{}

// table5Presets is the representative subset benchmarked per policy; the
// full 27-preset sweep runs through cmd/o2bench.
var table5Presets = []string{"avrora", "tomcat", "k9mail", "telegram", "zookeeper"}

// BenchmarkTable5_PTA measures pointer-analysis time per policy (the left
// half of Table 5).
func BenchmarkTable5_PTA(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	for _, name := range table5Presets {
		p, _ := workload.ByName(name)
		prog := workload.Build(p, entries)
		for _, pol := range bench.AllPolicies {
			b.Run(fmt.Sprintf("%s/%s", name, pol.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pr := bench.RunPTA(prog, pol, entries, benchOpts.StepBudget+500_000)
					if pr.TimedOut {
						b.Skipf("exceeded step budget (the paper's >4h cell)")
					}
				}
			})
		}
	}
}

// BenchmarkTable5_Detection measures the full race-detection pipeline per
// policy (the right half of Table 5).
func BenchmarkTable5_Detection(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	for _, name := range table5Presets {
		p, _ := workload.ByName(name)
		prog := workload.Build(p, entries)
		for _, pol := range []pta.Policy{bench.P0, bench.POPA, bench.P1CFA} {
			b.Run(fmt.Sprintf("%s/%s", name, pol.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pr := bench.RunPTA(prog, pol, entries, 500_000)
					if pr.TimedOut {
						b.Skipf("exceeded step budget")
					}
					dr := bench.RunDetect(pr.A, race.O2Options(), false, 3_000_000)
					if dr.TimedOut {
						b.Skipf("exceeded pair budget")
					}
				}
			})
		}
	}
}

// BenchmarkTable5_RacerD measures the RacerD-style comparator.
func BenchmarkTable5_RacerD(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	for _, name := range table5Presets {
		p, _ := workload.ByName(name)
		prog := workload.Build(p, entries)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				racerd.Analyze(prog, entries)
			}
		})
	}
}

// BenchmarkTable6 measures the C/C++-style presets (0-ctx vs OPA vs 2-CFA).
func BenchmarkTable6(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	for _, p := range workload.Table6 {
		prog := workload.Build(p, entries)
		for _, pol := range []pta.Policy{bench.P0, bench.POPA, bench.P2CFA} {
			b.Run(fmt.Sprintf("%s/%s", p.Name, pol.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pr := bench.RunPTA(prog, pol, entries, 500_000)
					if pr.TimedOut {
						b.Skipf("exceeded step budget (the paper's OOM cell)")
					}
				}
			})
		}
	}
}

// BenchmarkTable7 measures OSA against the TLOA-style escape analysis.
func BenchmarkTable7(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	for _, name := range []string{"avrora", "eclipse", "sunflow", "xalan"} {
		p, _ := workload.ByName(name)
		prog := workload.Build(p, entries)
		b.Run(name+"/OSA", func(b *testing.B) {
			pr := bench.RunPTA(prog, bench.POPA, entries, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				osa.Analyze(pr.A)
			}
		})
		b.Run(name+"/TLOA", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, timedOut := bench.RunEscape(p, bench.Opts{StepBudget: 500_000}); timedOut {
					b.Skipf("2-CFA substrate exceeded budget")
				}
			}
		})
	}
}

// BenchmarkTable8 measures end-to-end detection per policy on Dacapo-style
// presets (the precision table's cost side).
func BenchmarkTable8(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	for _, name := range []string{"avrora", "lusearch", "pmd"} {
		p, _ := workload.ByName(name)
		prog := workload.Build(p, entries)
		for _, pol := range []pta.Policy{bench.P0, bench.POPA} {
			b.Run(fmt.Sprintf("%s/%s", name, pol.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pr := bench.RunPTA(prog, pol, entries, 500_000)
					if pr.TimedOut {
						b.Skip()
					}
					bench.RunDetect(pr.A, race.O2Options(), false, 3_000_000)
				}
			})
		}
	}
}

// BenchmarkTable9 measures the distributed-system presets.
func BenchmarkTable9(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	for _, p := range workload.DistributedSystems() {
		prog := workload.Build(p, entries)
		b.Run(p.Name+"/O2", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pr := bench.RunPTA(prog, bench.POPA, entries, 500_000)
				if pr.TimedOut {
					b.Skip()
				}
				bench.RunDetect(pr.A, race.O2Options(), false, 3_000_000)
			}
		})
	}
}

// BenchmarkTable10 measures O2 on every real-world case-study model.
func BenchmarkTable10(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	for _, c := range cases.Table10 {
		prog, err := lang.Compile(c.Name+".mini", c.Source, entries)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pr := bench.RunPTA(prog, bench.POPA, entries, 0)
				dr := bench.RunDetect(pr.A, race.O2Options(), c.Android, 0)
				if len(dr.Report.Races) != c.Races {
					b.Fatalf("%s: %d races, want %d", c.Name, len(dr.Report.Races), c.Races)
				}
			}
		})
	}
}

// BenchmarkTable3_Complexity measures propagation cost across the size
// sweep per policy (the empirical counterpart of Table 3).
func BenchmarkTable3_Complexity(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	baseP, _ := workload.ByName("avrora")
	for _, scale := range []int{1, 2, 4} {
		p := workload.Scale(baseP, scale)
		prog := workload.Build(p, entries)
		for _, pol := range []pta.Policy{bench.P0, bench.POPA, bench.P2CFA} {
			b.Run(fmt.Sprintf("x%d/%s", scale, pol.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pr := bench.RunPTA(prog, pol, entries, 2_000_000)
					if pr.TimedOut {
						b.Skip()
					}
				}
			})
		}
	}
}

// BenchmarkAblation measures detection with each §4.1 optimization
// disabled (and the D4-style naive mode).
func BenchmarkAblation(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	p, _ := workload.ByName("zookeeper")
	prog := workload.Build(p, entries)
	pr := bench.RunPTA(prog, bench.POPA, entries, 0)
	sh := osa.Analyze(pr.A)
	g := shb.Build(pr.A, shb.Config{})
	variants := map[string]race.Options{
		"full":        race.O2Options(),
		"noRegions":   {RegionMerge: false, CanonicalLocksets: true, HBCache: true, OSAFilter: true},
		"noCanonLock": {RegionMerge: true, CanonicalLocksets: false, HBCache: true, OSAFilter: true},
		"noHBCache":   {RegionMerge: true, CanonicalLocksets: true, HBCache: false, OSAFilter: true},
		"naive":       race.NaiveOptions(),
	}
	for _, name := range []string{"full", "noRegions", "noCanonLock", "noHBCache", "naive"} {
		opts := variants[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				race.Detect(pr.A, sh, g, opts)
			}
		})
	}
}

// BenchmarkDetectAllocs measures the detection stage's allocation
// profile on the zookeeper preset (the distributed-system gate workload)
// at one and four workers:
//
//	go test -bench=DetectAllocs -benchmem
//
// is the command behind EXPERIMENTS.md's allocation table. The detect
// hot path is arena-backed (flat access groups, per-worker race-pair
// arenas, interned bitset locksets), so allocs/op stays near-constant in
// the workload size and the worker count.
func BenchmarkDetectAllocs(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	p, _ := workload.ByName("zookeeper")
	prog := workload.Build(p, entries)
	pr := bench.RunPTA(prog, bench.POPA, entries, 0)
	sh := osa.Analyze(pr.A)
	g := shb.Build(pr.A, shb.Config{})
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := race.O2Options()
			opts.Workers = w
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				race.Detect(pr.A, sh, g, opts)
			}
		})
	}
}

// BenchmarkFigure2 measures the paper's running example end to end.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := o2.AnalyzeSource("figure2.mini", cases.Figure2, o2.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Races()) != 1 {
			b.Fatalf("figure 2 must report exactly 1 race")
		}
	}
}

// BenchmarkLinuxModel measures the §5.4 Linux kernel configuration.
func BenchmarkLinuxModel(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	prog := workload.Build(workload.Linux(), entries)
	b.Run("O2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := pta.New(prog, pta.Config{Policy: bench.POPA, Entries: entries, ReplicateEvents: true})
			if err := a.Solve(); err != nil {
				b.Fatal(err)
			}
			sh := osa.Analyze(a)
			g := shb.Build(a, shb.Config{})
			race.Detect(a, sh, g, race.O2Options())
		}
	})
}

// BenchmarkParallelDetect measures the detection stage sequential vs
// parallel on the largest workload preset (the §5.4 Linux kernel model).
// The pipeline up to detection is solved once; each sub-benchmark differs
// only in Options.Workers, so
//
//	go test -bench=ParallelDetect -cpu=8
//
// reports the worker-pool speedup directly (the speedup tracks the
// available cores; with GOMAXPROCS=1 the worker counts tie).
func BenchmarkParallelDetect(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	prog := workload.Build(workload.Linux(), entries)
	a := pta.New(prog, pta.Config{Policy: bench.POPA, Entries: entries, ReplicateEvents: true})
	if err := a.Solve(); err != nil {
		b.Fatal(err)
	}
	sh := osa.Analyze(a)
	g := shb.Build(a, shb.Config{})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := race.O2Options()
			opts.Workers = w
			for i := 0; i < b.N; i++ {
				race.Detect(a, sh, g, opts)
			}
		})
	}
}

// BenchmarkParallelDetectObs measures the observability layer's overhead
// on the detection hot path: the same workload and worker count as
// BenchmarkParallelDetect, once with Options.Obs nil (every obs call is a
// single nil-receiver branch) and once with a live registry. The disabled
// variant must stay within 2% of a build without the obs layer — the
// pairwise loop accumulates into per-group locals and only the merge step
// touches shared state, so the nil path adds no atomics per pair.
func BenchmarkParallelDetectObs(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	prog := workload.Build(workload.Linux(), entries)
	a := pta.New(prog, pta.Config{Policy: bench.POPA, Entries: entries, ReplicateEvents: true})
	if err := a.Solve(); err != nil {
		b.Fatal(err)
	}
	sh := osa.Analyze(a)
	g := shb.Build(a, shb.Config{})
	b.Run("disabled", func(b *testing.B) {
		opts := race.O2Options()
		opts.Workers = 4
		for i := 0; i < b.N; i++ {
			race.Detect(a, sh, g, opts)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		opts := race.O2Options()
		opts.Workers = 4
		for i := 0; i < b.N; i++ {
			opts.Obs = obs.New()
			race.Detect(a, sh, g, opts)
		}
	})
	// The telemetry-disabled paths added with /metrics and structured
	// logging must stay as cheap as the nil registry: a nil *Histogram
	// observation and a nil *slog.Logger guard are one branch each.
	b.Run("hist-disabled", func(b *testing.B) {
		opts := race.O2Options()
		opts.Workers = 4
		var h *obs.Histogram
		for i := 0; i < b.N; i++ {
			start := time.Now()
			race.Detect(a, sh, g, opts)
			h.ObserveSince(start)
		}
	})
	b.Run("hist-enabled", func(b *testing.B) {
		opts := race.O2Options()
		opts.Workers = 4
		h := obs.NewHistogram(nil)
		for i := 0; i < b.N; i++ {
			start := time.Now()
			race.Detect(a, sh, g, opts)
			h.ObserveSince(start)
		}
	})
	b.Run("slog-disabled", func(b *testing.B) {
		opts := race.O2Options()
		opts.Workers = 4
		var log *slog.Logger
		for i := 0; i < b.N; i++ {
			rep := race.Detect(a, sh, g, opts)
			if log != nil {
				log.Info("detect", "races", len(rep.Races))
			}
		}
	})
	// The flight-recorder hooks (live progress on the cancelStride tick,
	// per-origin pair attribution) follow the same contract: with
	// Options.Progress and Options.Attr nil they reduce to one nil check
	// per stride tick / per tallied pair and must track the plain
	// disabled variant; enabled they pay the per-stride atomics and the
	// worker-local tallies.
	b.Run("progress-disabled", func(b *testing.B) {
		opts := race.O2Options()
		opts.Workers = 4
		var p *obs.Progress
		for i := 0; i < b.N; i++ {
			opts.Progress = p
			race.Detect(a, sh, g, opts)
			_ = p.Snapshot()
		}
	})
	b.Run("progress-enabled", func(b *testing.B) {
		opts := race.O2Options()
		opts.Workers = 4
		for i := 0; i < b.N; i++ {
			opts.Progress = obs.NewProgress()
			opts.Attr = race.NewAttribution(a.Origins.Len())
			race.Detect(a, sh, g, opts)
		}
	})
}

// TestDetectProgressDisabledAllocFree pins the allocation cost of the
// disabled flight-recorder path: a sequential Detect with Progress and
// Attr nil must allocate exactly as little as it did before the hooks
// existed. The detect hot path is allocation-free by construction (the
// pair buffer is reused across groups), so the budget is a handful of
// fixed setup allocations — any per-pair or per-stride allocation from
// the progress/attribution plumbing blows it immediately.
func TestDetectProgressDisabledAllocFree(t *testing.T) {
	entries := ir.DefaultEntryConfig()
	p, ok := workload.ByName("avrora")
	if !ok {
		t.Fatal("avrora preset missing")
	}
	prog := workload.Build(p, entries)
	a := pta.New(prog, pta.Config{Policy: bench.POPA, Entries: entries, ReplicateEvents: true})
	if err := a.Solve(); err != nil {
		t.Fatal(err)
	}
	sh := osa.Analyze(a)
	g := shb.Build(a, shb.Config{})
	opts := race.O2Options()
	opts.Workers = 1
	race.Detect(a, sh, g, opts) // warm the reach cache and lockset canon
	allocs := testing.AllocsPerRun(10, func() {
		race.Detect(a, sh, g, opts)
	})
	// Report + group bookkeeping for the warm run; measured ~68 on a quiet
	// run, pinned with headroom against process-global noise. A single
	// per-pair allocation would add hundreds (avrora checks >200 pairs)
	// and trip the pin at once.
	const budget = 96
	if allocs > budget {
		t.Fatalf("sequential Detect with progress disabled: %.0f allocs/run > budget %d", allocs, budget)
	}
}

// benchSource builds the scheduler benchmarks' minilang input: n racy
// thread classes sharing one field (quadratic pair growth, like the
// sched package's generator).
func benchSource(n, seed int) string {
	var b []byte
	b = append(b, "class S { field data; }\n"...)
	for i := 0; i < n; i++ {
		b = append(b, fmt.Sprintf("class W%d_%d { field s; W%d_%d(s) { this.s = s; } run() { sh = this.s; sh.data = this; } }\n", seed, i, seed, i)...)
	}
	b = append(b, "main {\n  s = new S();\n"...)
	for i := 0; i < n; i++ {
		b = append(b, fmt.Sprintf("  t%d = new W%d_%d(s);\n  t%d.start();\n", i, seed, i, i)...)
	}
	b = append(b, "}\n"...)
	return string(b)
}

// BenchmarkSchedulerThroughput measures batch throughput (jobs/s) across
// worker-pool sizes: each iteration submits a wave of distinct programs
// (caching disabled) and drains it. With GOMAXPROCS=1 the worker counts
// tie; on multicore hosts throughput tracks the pool size until the
// admission queue or the core count saturates.
func BenchmarkSchedulerThroughput(b *testing.B) {
	const wave = 16
	srcs := make([]string, wave)
	for i := range srcs {
		srcs[i] = benchSource(8, i)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := sched.New(sched.Options{Workers: workers, QueueDepth: wave + 1, CacheEntries: -1})
			defer s.Shutdown(context.Background())
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				jobs := make([]*sched.Job, wave)
				for k, src := range srcs {
					j, err := s.Submit(sched.Request{Files: map[string]string{"in.mini": src}, Config: o2.DefaultConfig()})
					if err != nil {
						b.Fatal(err)
					}
					jobs[k] = j
				}
				for _, j := range jobs {
					<-j.Done()
					if j.State() != sched.Done {
						b.Fatalf("job failed: %v", j.Err())
					}
				}
			}
			b.ReportMetric(float64(b.N*wave)/time.Since(start).Seconds(), "jobs/s")
		})
	}
}

// BenchmarkSchedulerCacheHit measures the warm-hit path: submit → sha256
// key → LRU lookup → instantly-done job. The cold analysis this replaces
// is 2–4 orders of magnitude slower (see EXPERIMENTS.md).
func BenchmarkSchedulerCacheHit(b *testing.B) {
	s := sched.New(sched.Options{Workers: 1})
	defer s.Shutdown(context.Background())
	r := sched.Request{Files: map[string]string{"in.mini": benchSource(8, 0)}, Config: o2.DefaultConfig()}
	j, err := s.Submit(r)
	if err != nil {
		b.Fatal(err)
	}
	<-j.Done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := s.Submit(r)
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
		if !j.Summary().Cached {
			b.Fatal("miss on warm cache")
		}
	}
}

// BenchmarkExtensions measures the beyond-race-detection analyses
// (deadlock, over-synchronization) on a distributed-system preset.
func BenchmarkExtensions(b *testing.B) {
	entries := ir.DefaultEntryConfig()
	p, _ := workload.ByName("zookeeper")
	prog := workload.Build(p, entries)
	pr := bench.RunPTA(prog, bench.POPA, entries, 0)
	sh := osa.Analyze(pr.A)
	g := shb.Build(pr.A, shb.Config{})
	b.Run("deadlock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			deadlock.Analyze(pr.A, g)
		}
	})
	b.Run("oversync", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			oversync.Analyze(pr.A, sh, g)
		}
	})
}
