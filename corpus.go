package o2

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"o2/internal/obs"
	"o2/internal/ring"
	"o2/internal/summary"
)

// CorpusConfig configures a streaming corpus run: one analysis Config
// applied to every program, plus the pipeline's shape.
type CorpusConfig struct {
	// Config is the per-program analysis configuration. Its Obs field is
	// ignored; set CollectStats for per-program registries.
	Config
	// Workers is the number of parallel lex/parse/lower+analyze workers
	// (0 = GOMAXPROCS). Each worker runs whole programs end to end;
	// Config.Workers still controls the detection pool inside a program
	// and defaults to 1 here so corpus-level parallelism does not
	// oversubscribe.
	Workers int
	// Window bounds the reorder window: at most Window programs may be
	// admitted beyond the emitted prefix (0 = 2×Workers). Peak live
	// memory is O(Window), independent of corpus length.
	Window int
	// ProgramTimeout is the per-program deadline (0 = none). An exceeded
	// deadline fails that program with ErrBudget and the stream continues
	// — per-program isolation, like any other program failure.
	ProgramTimeout time.Duration
	// Store enables per-unit summary reuse across the corpus: programs
	// are analyzed through AnalyzeIncremental sharing this store. Nil
	// uses the plain whole-program pipeline.
	Store *summary.Store
	// CollectStats gives every program its own obs.Registry, so each
	// CorpusResult.Result carries a RunStats report.
	CollectStats bool
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Window <= 0 {
		c.Window = 2 * c.Workers
	}
	if c.Config.Workers == 0 {
		c.Config.Workers = 1
	}
	return c
}

// CorpusResult is one program's outcome in a corpus stream, emitted in
// input order. Exactly one of Result and Err is set: a failed program is
// an error record, not a dead stream. The Result (and its points-to
// state) is only alive during the emit callback — the pipeline drops it
// afterwards, which is what keeps peak memory independent of corpus size.
type CorpusResult struct {
	// Index is the program's 0-based position in the input stream.
	Index int
	// Name is the source name.
	Name string
	// Result is the full analysis result (nil if Err is set).
	Result *Result
	// Err is the program's isolated failure: compile errors carry
	// ErrCompile, per-program deadlines ErrBudget.
	Err error
	// Wall is the program's queue-to-completion wall time.
	Wall time.Duration
}

// CorpusStats summarizes a completed corpus run.
type CorpusStats struct {
	// Programs is the number of programs emitted (including failures).
	Programs int `json:"programs"`
	// Failed counts programs that produced an error record.
	Failed int `json:"failed"`
	// Races is the total race count across successful programs.
	Races int `json:"races"`
	// Wall is the end-to-end stream time.
	Wall time.Duration `json:"wall_ns"`
}

// corpusTask pairs a source with its reserved reorder slot.
type corpusTask struct {
	idx  int
	src  Source
	cell ring.Cell[CorpusResult]
}

// AnalyzeCorpus streams a corpus of independent programs through
// CorpusConfig.Workers parallel pipelines and calls emit for every
// program strictly in input order. It is the repository-scale frontend:
// sources are pulled lazily from iter (never materializing the corpus),
// fan out to workers, and funnel through a bounded reorder window of
// CorpusConfig.Window programs — a slow program backpressures admission
// instead of growing a buffer, so peak live heap is independent of corpus
// length.
//
// Per-program failures (compile errors, per-program deadlines) are
// isolated: the program's CorpusResult carries the error and the stream
// continues. The whole stream aborts only on iterator errors, an emit
// error, or ctx ending — a canceled ctx returns ErrCanceled, an expired
// deadline ErrBudget, matching Analyze's contract. emit runs on the
// caller's goroutine, sequentially; returning an error from it cancels
// the remaining work.
func AnalyzeCorpus(ctx context.Context, iter SourceIter, cfg CorpusConfig, emit func(CorpusResult) error) (*CorpusStats, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	ro := ring.NewReorder[CorpusResult](cfg.Window)
	tasks := make(chan corpusTask)

	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				t.cell.Complete(cfg.analyzeOne(ctx, t.idx, t.src))
			}
		}()
	}

	// The dispatcher owns input order: pull a source, reserve the next
	// reorder slot (blocking while the window is full — backpressure),
	// hand both to a worker. It is the only Open/Close caller. An
	// iterator failure is a stream failure: it lands in iterErr and
	// cancels everything in flight.
	iterErr := make(chan error, 1)
	go func() {
		defer ro.Close()
		defer close(tasks)
		for idx := 0; ; idx++ {
			src, ok, err := iter.Next()
			if err != nil {
				iterErr <- fmt.Errorf("corpus source %d: %w", idx, err)
				cancel()
				return
			}
			if !ok {
				return
			}
			cell, err := ro.Open(ctx)
			if err != nil {
				return
			}
			select {
			case tasks <- corpusTask{idx, src, cell}:
			case <-ctx.Done():
				cell.Complete(CorpusResult{Index: idx, Name: src.Name, Err: ctxErr(ctx)})
				return
			}
		}
	}()
	defer wg.Wait()

	// streamErr resolves how a terminated stream failed: an iterator
	// error wins (it caused the cancellation), otherwise the ctx verdict.
	streamErr := func() error {
		select {
		case err := <-iterErr:
			return err
		default:
			return ctxErr(ctx)
		}
	}

	stats := &CorpusStats{}
	for {
		cr, ok, err := ro.Next(ctx)
		if err != nil {
			cancel()
			return nil, streamErr()
		}
		if !ok {
			break
		}
		stats.Programs++
		if cr.Err != nil {
			stats.Failed++
		} else {
			stats.Races += len(cr.Result.Races())
		}
		if err := emit(cr); err != nil {
			cancel()
			return nil, err
		}
	}
	if err := streamErr(); err != nil {
		return nil, err
	}
	stats.Wall = time.Since(start)
	return stats, nil
}

// analyzeOne runs one program end to end with per-program isolation:
// every failure lands in the result record. The corpus-level ctx still
// cuts through — a canceled stream fails the program with ErrCanceled,
// and the consumer loop aborts on the same ctx.
func (cfg CorpusConfig) analyzeOne(ctx context.Context, idx int, src Source) CorpusResult {
	start := time.Now()
	pcfg := cfg.Config
	if cfg.CollectStats {
		pcfg.Obs = obs.New()
	} else {
		pcfg.Obs = nil
	}
	if cfg.ProgramTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.ProgramTimeout)
		defer cancel()
	}
	var res *Result
	var err error
	if cfg.Store != nil {
		res, err = AnalyzeSourceIncremental(ctx, src.Name, string(src.Bytes), pcfg, cfg.Store)
	} else {
		res, err = AnalyzeSources(ctx, []Source{src}, pcfg)
	}
	cr := CorpusResult{Index: idx, Name: src.Name, Result: res, Err: err, Wall: time.Since(start)}
	if err != nil {
		cr.Result = nil
	}
	return cr
}

// ctxErr maps a context's termination onto the pipeline's sentinel
// errors, mirroring what Analyze returns for the same condition.
func ctxErr(ctx context.Context) error {
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		return ErrBudget
	case ctx.Err() != nil:
		return ErrCanceled
	}
	return nil
}
