package o2

import "testing"

// Tests for the synchronization extensions the paper lists as future work
// (§4: "we aim to support atomics and semaphores ... by adding new
// happens-before rules"): volatile (atomic) fields and condition-variable
// wait/notify edges.

func TestVolatileFieldNoRace(t *testing.T) {
	src := `
class Flags { volatile field stop; field plain; }
class W {
  field f;
  W(f) { this.f = f; }
  run() {
    x = this.f;
    x.stop = this;    // volatile: synchronization, not a race
    x.plain = this;   // plain: races
  }
}
main {
  f = new Flags();
  w1 = new W(f);
  w2 = new W(f);
  w1.start();
  w2.start();
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 1 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("want 1 race (plain only), got %d", n)
	}
	if f := res.Races()[0].Key.Field; f != "plain" {
		t.Errorf("race on %q, want plain", f)
	}
}

func TestVolatileStaticNoRace(t *testing.T) {
	src := `
class G {
  static volatile field running;
  static field counter;
}
class W {
  run() {
    G.running = this;
    G.counter = this;
  }
}
main {
  w1 = new W();
  w2 = new W();
  w1.start();
  w2.start();
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 1 {
		t.Fatalf("want 1 race (counter only), got %d", n)
	}
	if s := res.Races()[0].Key.Static; s != "G.counter" {
		t.Errorf("race on %q, want G.counter", s)
	}
}

func TestVolatileInherited(t *testing.T) {
	src := `
class Base { volatile field state; }
class Derived extends Base { }
class W {
  field d;
  W(d) { this.d = d; }
  run() { x = this.d; x.state = this; }
}
main {
  d = new Derived();
  w1 = new W(d);
  w2 = new W(d);
  w1.start();
  w2.start();
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 0 {
		t.Fatalf("inherited volatile should suppress the race: got %d", n)
	}
}

// Producer initializes data, then notifies; consumer waits, then reads.
// The notify→wait happens-before edge orders them: no race. Removing the
// notify/wait pair restores the race.
func TestWaitNotifyOrdering(t *testing.T) {
	synced := `
class Box { field data; }
class Producer {
  field b; field cond;
  Producer(b, c) { this.b = b; this.cond = c; }
  run() {
    x = this.b;
    x.data = this;     // before notify
    c = this.cond;
    c.notify();
  }
}
class Consumer {
  field b; field cond;
  Consumer(b, c) { this.b = b; this.cond = c; }
  run() {
    c = this.cond;
    c.wait();
    x = this.b;
    r = x.data;        // after wait: ordered after the producer write
  }
}
main {
  b = new Box();
  c = new Cond();
  p = new Producer(b, c);
  q = new Consumer(b, c);
  p.start();
  q.start();
}
`
	res := analyze(t, synced, DefaultConfig())
	if n := len(res.Races()); n != 0 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("notify→wait edge should order producer and consumer: %d races", n)
	}

	unsynced := `
class Box { field data; }
class Producer {
  field b;
  Producer(b) { this.b = b; }
  run() { x = this.b; x.data = this; }
}
class Consumer {
  field b;
  Consumer(b) { this.b = b; }
  run() { x = this.b; r = x.data; }
}
main {
  b = new Box();
  p = new Producer(b);
  q = new Consumer(b);
  p.start();
  q.start();
}
`
	res2 := analyze(t, unsynced, DefaultConfig())
	if n := len(res2.Races()); n != 1 {
		t.Fatalf("without wait/notify the pair must race: got %d", n)
	}
}

// A write AFTER the wait still races with the producer's post-notify code:
// the edge only orders notify-prefix before wait-suffix.
func TestWaitNotifyDoesNotOverOrder(t *testing.T) {
	src := `
class Box { field data; field late; }
class Producer {
  field b; field cond;
  Producer(b, c) { this.b = b; this.cond = c; }
  run() {
    c = this.cond;
    c.notify();
    x = this.b;
    x.late = this;     // after notify: unordered with consumer
  }
}
class Consumer {
  field b; field cond;
  Consumer(b, c) { this.b = b; this.cond = c; }
  run() {
    c = this.cond;
    c.wait();
    x = this.b;
    x.late = this;     // races with the producer's post-notify write
  }
}
main {
  b = new Box();
  c = new Cond();
  p = new Producer(b, c);
  q = new Consumer(b, c);
  p.start();
  q.start();
}
`
	res := analyze(t, src, DefaultConfig())
	if n := len(res.Races()); n != 1 {
		for _, r := range res.Races() {
			t.Logf("%s", r.String())
		}
		t.Fatalf("post-notify writes must still race: got %d", n)
	}
	if f := res.Races()[0].Key.Field; f != "late" {
		t.Errorf("race on %q, want late", f)
	}
}

// Extension analyses exposed on the facade.
func TestFacadeDeadlockAndOverSync(t *testing.T) {
	src := `
class D { field v; }
class W1 {
  field a; field b;
  W1(a, b) { this.a = a; this.b = b; }
  run() {
    x = this.a;
    y = this.b;
    d = new D();
    sync (x) { sync (y) { d.v = this; } }
  }
}
class W2 {
  field a; field b;
  W2(a, b) { this.a = a; this.b = b; }
  run() {
    x = this.a;
    y = this.b;
    d = new D();
    sync (y) { sync (x) { d.v = this; } }
  }
}
main {
  a = new LockA();
  b = new LockB();
  w1 = new W1(a, b);
  w2 = new W2(a, b);
  w1.start();
  w2.start();
}
`
	res := analyze(t, src, DefaultConfig())
	dl := res.Deadlocks()
	if len(dl.Warnings) != 1 {
		t.Errorf("want the AB/BA deadlock, got %d warnings", len(dl.Warnings))
	}
	os := res.OverSync()
	if len(os.Warnings) == 0 {
		t.Errorf("locks guarding only origin-local D should be flagged")
	}
}
